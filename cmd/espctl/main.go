// Command espctl is the client for espserved.
//
// Usage:
//
//	espctl [-addr http://127.0.0.1:8585] <command> [flags]
//
//	espctl submit -arch esp-nuca -workload apache -seed 2 [-wait] [-trace-id ID]
//	espctl submit -matrix -workloads apache,oltp -variant-set counterparts [-wait]
//	espctl wait j00000001
//	espctl fetch j00000001
//	espctl status j00000001
//	espctl trace j00000001
//	espctl jobs
//	espctl cancel j00000001
//	espctl cache-stats
//	espctl health
//	espctl ready
//
// wait streams the job's JSONL event feed and prints progress to
// stderr; fetch prints the result payload as JSON on stdout; trace
// renders the job's span tree as an indented timeline, which makes a
// result-cache hit visible (the tree stops at cache-lookup hit=true).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

type client struct {
	base string
	http *http.Client
	// retries is the max transient-failure retries on idempotent (GET)
	// calls; 0 disables retrying.
	retries int
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espctl:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8585", "espserved base URL")
	retries := flag.Int("retries", 4, "max retries of idempotent calls on transient errors (refused/reset, 502/503); 0 disables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: espctl [-addr URL] <submit|status|wait|fetch|trace|jobs|cancel|cache-stats|health|ready> [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/"), http: &http.Client{}, retries: *retries}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = c.submit(args)
	case "status":
		err = c.status(args)
	case "wait":
		err = c.wait(args)
	case "fetch":
		err = c.fetch(args)
	case "trace":
		err = c.trace(args)
	case "jobs":
		err = c.jobs(args)
	case "cancel":
		err = c.cancel(args)
	case "cache-stats":
		err = c.getAndPrint("/v1/cache/stats")
	case "health":
		err = c.getAndPrint("/healthz")
	case "ready":
		err = c.ready()
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
}

// jobView mirrors service.JobView's wire shape (kept local so the
// client binary does not link the simulator).
type jobView struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Priority int    `json:"priority"`
	Progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
}

func terminal(state string) bool {
	return state == "succeeded" || state == "failed" || state == "canceled"
}

// do issues one API call. Idempotent calls — GETs, which status, wait
// (its polling fallback), fetch, jobs, trace, cache-stats and health
// all are — retry transient failures (connection refused/reset, 502,
// 503) with capped exponential backoff plus jitter, so a restarting or
// briefly overloaded daemon doesn't fail a watch loop. /readyz is
// exempt: its 503 is the answer ("draining"), not an outage. Writes
// (submit, cancel) are never retried — the caller must not risk a
// duplicate job.
func (c *client) do(method, path string, body any, hdrs ...[2]string) ([]byte, int, error) {
	attempts := 1
	if method == http.MethodGet && c.retries > 0 && path != "/readyz" {
		attempts = c.retries + 1
	}
	var (
		b    []byte
		code int
		err  error
	)
	backoff := 100 * time.Millisecond
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2+1))))
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
		b, code, err = c.doOnce(method, path, body, hdrs...)
		// A transport error on a GET is always safe to retry; 502/503
		// mean a proxy or a draining daemon that may come back.
		if err == nil && code != http.StatusBadGateway && code != http.StatusServiceUnavailable {
			return b, code, nil
		}
	}
	return b, code, err
}

func (c *client) doOnce(method, path string, body any, hdrs ...[2]string) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for _, h := range hdrs {
		req.Header.Set(h[0], h[1])
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

// apiErr extracts {"error": ...} bodies.
func apiErr(b []byte, code int) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s (HTTP %d)", e.Error, code)
	}
	return fmt.Errorf("HTTP %d: %s", code, bytes.TrimSpace(b))
}

func (c *client) getAndPrint(path string) error {
	b, code, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return apiErr(b, code)
	}
	os.Stdout.Write(b)
	return nil
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		archName = fs.String("arch", "esp-nuca", "architecture (run jobs)")
		wl       = fs.String("workload", "apache", "workload (run jobs)")
		seed     = fs.Uint64("seed", 0, "seed (0 = harness default)")
		warmup   = fs.Uint64("warmup", 0, "warmup instructions per core (0 = default)")
		instrs   = fs.Uint64("instructions", 0, "measured instructions per core (0 = default)")
		fullSize = fs.Bool("full-size", false, "simulate the paper's full Table 2 machine")
		ccProb   = fs.Float64("cc-prob", 0, "Cooperative Caching probability override (0 = default)")
		sampleW  = fs.Int("sample-windows", 0, "sampled mode: measurement windows per simulation (0 = full run)")
		shards   = fs.Int("shards", 0, "sharded engine: mesh-region shards per simulation (0 = serial engine)")
		barrierP = fs.Int("barrier-parallel", 0, "sharded engine: workers per window barrier servicing independent conflict groups (<=1 = serial barriers)")

		matrix     = fs.Bool("matrix", false, "submit a matrix job instead of a single run")
		workloads  = fs.String("workloads", "", "comma-separated workloads (matrix jobs)")
		variantSet = fs.String("variant-set", "counterparts", "matrix variant family: counterparts, cc or all")
		seeds      = fs.String("seeds", "", "comma-separated seeds (matrix jobs)")
		parallel   = fs.Int("parallel", 0, "per-job worker pool bound (matrix jobs)")

		priority = fs.Int("priority", 0, "queue priority (higher runs sooner)")
		deadline = fs.Duration("deadline", 0, "total deadline (queue + run), e.g. 90s (0 = none)")
		wait     = fs.Bool("wait", false, "wait for completion and print the result")
		traceID  = fs.String("trace-id", "", "propagate this correlation ID into the job's trace (empty = server-generated)")
	)
	fs.Parse(args)

	spec := map[string]any{}
	if *priority != 0 {
		spec["priority"] = *priority
	}
	if *deadline > 0 {
		spec["deadline_ms"] = deadline.Milliseconds()
	}
	if *matrix {
		m := map[string]any{"variant_set": *variantSet}
		if *workloads == "" {
			return fmt.Errorf("matrix jobs need -workloads")
		}
		m["workloads"] = strings.Split(*workloads, ",")
		if *seeds != "" {
			var ss []uint64
			for _, s := range strings.Split(*seeds, ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
				if err != nil {
					return fmt.Errorf("bad seed %q: %w", s, err)
				}
				ss = append(ss, v)
			}
			m["seeds"] = ss
		}
		if *warmup > 0 {
			m["warmup"] = *warmup
		}
		if *instrs > 0 {
			m["instructions"] = *instrs
		}
		if *parallel > 0 {
			m["parallelism"] = *parallel
		}
		if *sampleW > 0 {
			m["sample_windows"] = *sampleW
		}
		if *shards > 0 {
			m["engine_shards"] = *shards
		}
		if *barrierP != 0 {
			m["barrier_parallelism"] = *barrierP
		}
		spec["kind"], spec["matrix"] = "matrix", m
	} else {
		r := map[string]any{"arch": *archName, "workload": *wl}
		if *seed > 0 {
			r["seed"] = *seed
		}
		if *warmup > 0 {
			r["warmup"] = *warmup
		}
		if *instrs > 0 {
			r["instructions"] = *instrs
		}
		if *fullSize {
			r["full_size"] = true
		}
		if *ccProb > 0 {
			r["cc_probability"] = *ccProb
		}
		if *sampleW > 0 {
			r["sample_windows"] = *sampleW
		}
		if *shards > 0 {
			r["engine_shards"] = *shards
		}
		if *barrierP != 0 {
			r["barrier_parallelism"] = *barrierP
		}
		spec["kind"], spec["run"] = "run", r
	}

	var hdrs [][2]string
	if *traceID != "" {
		hdrs = append(hdrs, [2]string{"X-Trace-Id", *traceID})
	}
	b, code, err := c.do(http.MethodPost, "/v1/jobs", spec, hdrs...)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return apiErr(b, code)
	}
	var idResp struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(b, &idResp); err != nil {
		return err
	}
	if !*wait {
		fmt.Println(idResp.ID)
		return nil
	}
	if idResp.TraceID != "" {
		fmt.Fprintln(os.Stderr, "submitted", idResp.ID, "trace", idResp.TraceID)
	} else {
		fmt.Fprintln(os.Stderr, "submitted", idResp.ID)
	}
	return c.waitAndFetch(idResp.ID)
}

// streamEvents follows the job's JSONL event feed, reporting progress
// on stderr, and returns the terminal view. Falls back to polling if
// the stream breaks.
func (c *client) streamEvents(id string) (jobView, error) {
	resp, err := c.http.Get(c.base + "/v1/jobs/" + id + "/events?format=jsonl")
	if err == nil && resp.StatusCode == http.StatusOK {
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // matrix results can be large
		var v jobView
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
				return v, fmt.Errorf("bad event: %w", err)
			}
			if v.Progress.Total > 0 {
				fmt.Fprintf(os.Stderr, "\r%s %s %d/%d", v.ID, v.State, v.Progress.Done, v.Progress.Total)
			} else {
				fmt.Fprintf(os.Stderr, "\r%s %s", v.ID, v.State)
			}
			if terminal(v.State) {
				fmt.Fprintln(os.Stderr)
				return v, nil
			}
		}
		fmt.Fprintln(os.Stderr)
		if err := sc.Err(); err != nil {
			return v, err
		}
	} else if resp != nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return jobView{}, apiErr(b, resp.StatusCode)
		}
	}
	// Stream ended without a terminal state (or never connected): poll.
	for {
		v, err := c.getJob(id)
		if err != nil {
			return v, err
		}
		if terminal(v.State) {
			return v, nil
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func (c *client) getJob(id string) (jobView, error) {
	b, code, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return jobView{}, err
	}
	if code != http.StatusOK {
		return jobView{}, apiErr(b, code)
	}
	var v jobView
	return v, json.Unmarshal(b, &v)
}

func (c *client) waitAndFetch(id string) error {
	v, err := c.streamEvents(id)
	if err != nil {
		return err
	}
	switch v.State {
	case "succeeded":
		return c.getAndPrint("/v1/jobs/" + id + "/result")
	case "canceled":
		return fmt.Errorf("job %s canceled", id)
	default:
		return fmt.Errorf("job %s failed: %s", id, v.Error)
	}
}

func needID(args []string, cmd string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: espctl %s <job-id>", cmd)
	}
	return args[0], nil
}

func (c *client) status(args []string) error {
	id, err := needID(args, "status")
	if err != nil {
		return err
	}
	return c.getAndPrint("/v1/jobs/" + id)
}

func (c *client) wait(args []string) error {
	id, err := needID(args, "wait")
	if err != nil {
		return err
	}
	return c.waitAndFetch(id)
}

func (c *client) fetch(args []string) error {
	id, err := needID(args, "fetch")
	if err != nil {
		return err
	}
	return c.getAndPrint("/v1/jobs/" + id + "/result")
}

// span and traceView mirror the /v1/jobs/{id}/trace wire shape.
type span struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs"`
}

type traceView struct {
	JobID   string `json:"job_id"`
	TraceID string `json:"trace_id"`
	State   string `json:"state"`
	Spans   []span `json:"spans"`
}

func fmtMS(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 1, 64) + "ms"
}

// fmtAttrs renders an attribute bag as sorted k=v pairs.
func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return "  " + strings.Join(parts, " ")
}

// trace renders the job's span tree as an indented timeline: one line
// per span with its offset from the trace start, duration, a scaled
// bar, and its attributes. A warm resubmission is immediately visible:
// the tree ends at `cache-lookup hit=true` with no `run` underneath.
func (c *client) trace(args []string) error {
	id, err := needID(args, "trace")
	if err != nil {
		return err
	}
	b, code, err := c.do(http.MethodGet, "/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return apiErr(b, code)
	}
	var tv traceView
	if err := json.Unmarshal(b, &tv); err != nil {
		return err
	}
	if len(tv.Spans) == 0 {
		fmt.Printf("trace %s  job %s (%s)  no spans\n", tv.TraceID, tv.JobID, tv.State)
		return nil
	}
	minStart, maxEnd := tv.Spans[0].Start, tv.Spans[0].Start
	for _, sp := range tv.Spans {
		if sp.Start.Before(minStart) {
			minStart = sp.Start
		}
		end := sp.End
		if end.IsZero() {
			end = sp.Start
		}
		if end.After(maxEnd) {
			maxEnd = end
		}
	}
	total := maxEnd.Sub(minStart)
	if total <= 0 {
		total = time.Millisecond
	}
	children := make(map[uint64][]span)
	for _, sp := range tv.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	fmt.Printf("trace %s  job %s (%s)  %d spans  %s\n",
		tv.TraceID, tv.JobID, tv.State, len(tv.Spans), fmtMS(total))
	const barWidth = 32
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, sp := range children[parent] {
			off := sp.Start.Sub(minStart)
			end, open := sp.End, false
			if end.IsZero() {
				end, open = maxEnd, true
			}
			dur := end.Sub(sp.Start)
			lo := int(float64(off) / float64(total) * barWidth)
			hi := int(float64(off+dur) / float64(total) * barWidth)
			if lo >= barWidth {
				lo = barWidth - 1
			}
			if hi <= lo {
				hi = lo + 1
			}
			if hi > barWidth {
				hi = barWidth
			}
			bar := strings.Repeat(".", lo) + strings.Repeat("=", hi-lo) + strings.Repeat(".", barWidth-hi)
			durStr := fmtMS(dur)
			if open {
				durStr += " (open)"
			}
			name := strings.Repeat("  ", depth) + sp.Name
			fmt.Printf("  %-28s %10s %14s  [%s]%s\n",
				name, "+"+fmtMS(off), durStr, bar, fmtAttrs(sp.Attrs))
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return nil
}

// ready prints the daemon's readiness snapshot; a draining (or
// otherwise not-ready) daemon exits non-zero.
func (c *client) ready() error {
	b, code, err := c.do(http.MethodGet, "/readyz", nil)
	if err != nil {
		return err
	}
	os.Stdout.Write(b)
	if code != http.StatusOK {
		return fmt.Errorf("not ready (HTTP %d)", code)
	}
	return nil
}

func (c *client) jobs(args []string) error {
	b, code, err := c.do(http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return apiErr(b, code)
	}
	var views []jobView
	if err := json.Unmarshal(b, &views); err != nil {
		return err
	}
	if len(views) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	fmt.Printf("%-10s %-7s %-10s %4s %10s\n", "ID", "KIND", "STATE", "PRIO", "PROGRESS")
	for _, v := range views {
		prog := ""
		if v.Progress.Total > 0 {
			prog = fmt.Sprintf("%d/%d", v.Progress.Done, v.Progress.Total)
		}
		fmt.Printf("%-10s %-7s %-10s %4d %10s\n", v.ID, v.Kind, v.State, v.Priority, prog)
	}
	return nil
}

func (c *client) cancel(args []string) error {
	id, err := needID(args, "cancel")
	if err != nil {
		return err
	}
	b, code, err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return apiErr(b, code)
	}
	os.Stdout.Write(b)
	return nil
}
