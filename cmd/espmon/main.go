// Command espmon captures and inspects simulator telemetry: it runs an
// instrumented simulation that records interval metrics (JSONL) and
// Chrome trace_event JSON loadable in chrome://tracing or Perfetto, and
// summarizes the recorded adaptive behaviour (ESP-NUCA's per-bank nmax).
//
// Usage:
//
//	espmon run -arch esp-nuca -workload oltp -metrics out.jsonl -trace out.json
//	espmon run -workload apache -interval 2000            # metrics to stdout
//	espmon nmax -workload oltp                            # nmax adaptation table
//	espmon nmax -workload oltp -bank 3                    # one bank's time series
//	espmon stream -workload oltp -core 0 -n 100000        # stream access mix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"espnuca/internal/arch"
	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espmon:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: espmon <command> [flags]

commands:
  run      run one instrumented simulation; write interval metrics
           (-metrics, JSONL) and/or a Chrome trace (-trace, Perfetto JSON)
  nmax     run esp-nuca and report the per-bank nmax adaptation
  stream   summarize a workload stream's access mix

run 'espmon <command> -h' for the command's flags`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "nmax":
		cmdNMax(os.Args[2:])
	case "stream":
		cmdStream(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "espmon: unknown command %q\n\n", os.Args[1])
		usage()
	}
}

// runFlags are the simulation knobs shared by `run` and `nmax`.
type runFlags struct {
	arch, workload             string
	seed, warmup, instructions uint64
	interval                   uint64
}

func addRunFlags(fs *flag.FlagSet, defArch string) *runFlags {
	rf := &runFlags{}
	fs.StringVar(&rf.arch, "arch", defArch, "architecture")
	fs.StringVar(&rf.workload, "workload", "oltp", "workload")
	fs.Uint64Var(&rf.seed, "seed", 1, "perturbation seed")
	fs.Uint64Var(&rf.warmup, "warmup", 80_000, "per-core warmup instructions")
	fs.Uint64Var(&rf.instructions, "instructions", 40_000, "per-core measured instructions")
	fs.Uint64Var(&rf.interval, "interval", uint64(experiment.DefaultMetricsInterval), "sampling interval in cycles")
	return rf
}

// execute runs one instrumented simulation and returns the registry.
func (rf *runFlags) execute(reg *obs.Registry) (experiment.RunResult, error) {
	rc := experiment.DefaultRunConfig(rf.arch, rf.workload)
	rc.Seed = rf.seed
	rc.Warmup = rf.warmup
	rc.Instructions = rf.instructions
	rc.Metrics = reg
	rc.MetricsInterval = sim.Cycle(rf.interval)
	return experiment.Run(rc)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("espmon run", flag.ExitOnError)
	rf := addRunFlags(fs, "esp-nuca")
	metrics := fs.String("metrics", "-", "JSONL interval metrics file ('-': stdout, '': off)")
	tracePath := fs.String("trace", "", "Chrome trace_event JSON file ('': off)")
	promPath := fs.String("prom", "", "final registry snapshot in Prometheus text format ('': off)")
	fs.Parse(args)

	reg := obs.NewRegistry()
	var mw io.Writer
	switch *metrics {
	case "":
	case "-":
		mw = os.Stdout
	default:
		f, err := os.Create(*metrics)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		mw = f
	}
	if mw != nil {
		reg.AttachJSONL(mw)
	}
	if *tracePath != "" {
		reg.EnableTrace()
	}

	rep, err := rf.execute(reg)
	if err != nil {
		fail(err)
	}
	if err := reg.Err(); err != nil {
		fail(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := reg.Trace().WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *promPath != "" {
		f, err := os.Create(*promPath)
		if err != nil {
			fail(err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	fmt.Fprintf(os.Stderr, "%s/%s seed %d: %d intervals, %d series, throughput %.4f\n",
		rep.Arch, rep.Workload, rep.Seed, reg.Ticks(), len(reg.SeriesNames()), rep.Throughput)
	if *metrics != "" && *metrics != "-" {
		fmt.Fprintf(os.Stderr, "metrics: %s\n", *metrics)
	}
	if *tracePath != "" {
		fmt.Fprintf(os.Stderr, "trace:   %s (load in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
	if *promPath != "" {
		fmt.Fprintf(os.Stderr, "prom:    %s\n", *promPath)
	}
}

func cmdNMax(args []string) {
	fs := flag.NewFlagSet("espmon nmax", flag.ExitOnError)
	rf := addRunFlags(fs, "esp-nuca")
	bank := fs.Int("bank", -1, "dump one bank's full nmax time series")
	fs.Parse(args)

	reg := obs.NewRegistry()
	rep, err := rf.execute(reg)
	if err != nil {
		fail(err)
	}
	if *bank >= 0 {
		s := reg.Series(fmt.Sprintf("bank%02d.nmax", *bank))
		pts := s.Points()
		if len(pts) == 0 {
			fail(fmt.Errorf("no nmax series for bank %d (is -arch a protected-LRU ESP-NUCA?)", *bank))
		}
		fmt.Printf("# %s/%s seed %d, bank %d nmax per %d-cycle interval\n",
			rep.Arch, rep.Workload, rep.Seed, *bank, rf.interval)
		for _, p := range pts {
			fmt.Printf("%10d %3.0f\n", p.T, p.V)
		}
		return
	}

	fmt.Printf("# %s/%s seed %d: per-bank nmax adaptation over %d intervals\n",
		rep.Arch, rep.Workload, rep.Seed, reg.Ticks())
	fmt.Printf("%-6s %8s %6s %6s %6s %8s %8s %8s\n",
		"bank", "samples", "min", "max", "final", "hrc", "hrr", "hre")
	printed := 0
	for b := 0; ; b++ {
		nm := reg.Series(fmt.Sprintf("bank%02d.nmax", b))
		pts := nm.Points()
		if len(pts) == 0 {
			break
		}
		min, max := pts[0].V, pts[0].V
		for _, p := range pts {
			if p.V < min {
				min = p.V
			}
			if p.V > max {
				max = p.V
			}
		}
		last := func(name string) float64 {
			p, _ := reg.Series(fmt.Sprintf("bank%02d.%s", b, name)).Last()
			return p.V
		}
		fmt.Printf("bank%02d %8d %6.0f %6.0f %6.0f %8.3f %8.3f %8.3f\n",
			b, len(pts), min, max, pts[len(pts)-1].V, last("hrc"), last("hrr"), last("hre"))
		printed++
	}
	if printed == 0 {
		fail(fmt.Errorf("architecture %q exports no nmax series (need protected-LRU ESP-NUCA)", rf.arch))
	}
}

func cmdStream(args []string) {
	fs := flag.NewFlagSet("espmon stream", flag.ExitOnError)
	wlName := fs.String("workload", "oltp", "workload")
	coreID := fs.Int("core", 0, "core whose stream to summarize")
	n := fs.Int("n", 100_000, "instructions to generate")
	seed := fs.Uint64("seed", 1, "stream seed")
	fs.Parse(args)

	spec, ok := workload.ByName(*wlName)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *wlName))
	}
	if *coreID < 0 || *coreID > 7 {
		fail(fmt.Errorf("core must be 0-7"))
	}
	cfg := arch.ScaledConfig()
	bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), *seed)
	sum := workload.SummarizeStream(bound.Streams[*coreID], *n, nil)
	fmt.Printf("workload        %s (%s), core %d, %d instructions\n", spec.Name, spec.Kind, *coreID, sum.Instructions)
	fmt.Printf("memory ops      %d (%.1f%% of instructions)\n", sum.MemOps, 100*float64(sum.MemOps)/float64(sum.Instructions))
	fmt.Printf("stores          %d (%.1f%% of memory ops)\n", sum.Writes, pct(sum.Writes, sum.MemOps))
	fmt.Printf("fetch events    %d (%.1f%% of instructions)\n", sum.Fetches, 100*float64(sum.Fetches)/float64(sum.Instructions))
	fmt.Printf("data footprint  %d lines (%d KB)\n", sum.DataLines, sum.DataLines*64/1024)
	fmt.Printf("code footprint  %d lines (%d KB)\n", sum.CodeLines, sum.CodeLines*64/1024)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
