// Command espstat aggregates JSON run reports produced by
// `espsim -json`: it groups runs by (architecture, workload), reports
// mean / 95% CI for the performance metric, and, when a baseline
// architecture is present, shared-normalized comparisons.
//
// Usage:
//
//	for s in 1 2 3; do
//	  go run ./cmd/espsim -arch esp-nuca -workload oltp -seed $s -json
//	  go run ./cmd/espsim -arch shared   -workload oltp -seed $s -json
//	done > runs.jsonl
//	go run ./cmd/espstat -baseline shared < runs.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"espnuca/internal/experiment"
	"espnuca/internal/stats"
	"espnuca/internal/workload"
)

func main() {
	baseline := flag.String("baseline", "shared", "architecture to normalize against (empty: none)")
	flag.Parse()

	type key struct{ arch, wl string }
	groups := map[key][]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rep experiment.RunResult
		if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
			fmt.Fprintf(os.Stderr, "espstat: line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
		spec, ok := workload.ByName(rep.Workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "espstat: line %d: unknown workload %q\n", lineNo, rep.Workload)
			os.Exit(1)
		}
		k := key{rep.Arch, rep.Workload}
		groups[k] = append(groups[k], rep.Performance(spec.Kind))
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "espstat:", err)
		os.Exit(1)
	}
	if len(groups) == 0 {
		fmt.Fprintln(os.Stderr, "espstat: no reports on stdin")
		os.Exit(1)
	}

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].wl != keys[j].wl {
			return keys[i].wl < keys[j].wl
		}
		return keys[i].arch < keys[j].arch
	})

	fmt.Printf("%-12s %-14s %6s %12s %12s %10s %10s\n", "workload", "arch", "runs", "perf", "median", "ci95", "norm")
	for _, k := range keys {
		s := stats.Summarize(groups[k])
		norm := ""
		if *baseline != "" {
			if base, ok := groups[key{*baseline, k.wl}]; ok {
				bs := stats.Summarize(base)
				if bs.Mean > 0 {
					norm = fmt.Sprintf("%10.3f", s.Mean/bs.Mean)
				}
			}
		}
		fmt.Printf("%-12s %-14s %6d %12.4f %12.4f %10.4f %10s\n",
			k.wl, k.arch, s.N, s.Mean, s.Median, s.CI95, norm)
	}
}
