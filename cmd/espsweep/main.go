// Command espsweep regenerates the paper's tables and figures.
//
// Usage:
//
//	espsweep -figure 8            # one evaluation figure (4-10)
//	espsweep -table 1             # the workload catalog
//	espsweep -all                 # every figure, full quality
//	espsweep -figure 8 -quick     # one seed, short quantum
//	espsweep -sweep params        # S5.2 sensitivity sweep (a, b, d, N)
//	espsweep -stability           # S6 cross-suite variance comparison
//	espsweep -all -parallel 8     # bound the worker pool (0 = all cores)
//	espsweep -figure 8 -cpuprofile cpu.pprof -memprofile mem.pprof
//	espsweep -figure 8 -quick -metrics-dir obs -trace   # per-run telemetry
//	espsweep -all -cache-dir ~/.cache/espnuca           # memoize runs on disk
//	espsweep -figure 8 -sample-windows 8                # sampled estimates
//	espsweep -sample-error FT -sample-windows 8 -warmup 80000 -instructions 640000
//	espsweep -figure 8 -shards 8                        # sharded parallel engine
//	espsweep -shard-error FT -shards 8 -warmup 80000 -instructions 640000
//	espsweep -figure 8 -exectrace exec.trace            # runtime execution trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"time"

	"espnuca"
	"espnuca/internal/arch"
	"espnuca/internal/core"
	"espnuca/internal/experiment"
	"espnuca/internal/resultcache"
	"espnuca/internal/sim"
)

// progressLine is a goroutine-safe `\r<done>/<total>` printer. Matrix
// workers report completions concurrently; the line only ever moves
// forward, and on the final update it closes with an elapsed-time
// summary and exactly one newline, so subsequent table output starts
// on a fresh line.
type progressLine struct {
	mu     sync.Mutex
	last   int
	prefix string
	start  time.Time
}

// newProgress starts the clock at construction so the summary covers
// the whole batch, including the first run.
func newProgress(prefix string) *progressLine {
	return &progressLine{prefix: prefix, start: time.Now()}
}

func (p *progressLine) report(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.start.IsZero() {
		p.start = time.Now()
	}
	if done <= p.last {
		return
	}
	p.last = done
	fmt.Fprintf(os.Stderr, "\r%s%d/%d runs", p.prefix, done, total)
	if done == total {
		fmt.Fprintf(os.Stderr, " in %.1fs\n", time.Since(p.start).Seconds())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "espsweep:", err)
	os.Exit(1)
}

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure to regenerate (4-10)")
		table    = flag.Int("table", 0, "table to print (1 or 2)")
		all      = flag.Bool("all", false, "regenerate every figure")
		quick    = flag.Bool("quick", false, "single seed, short quantum")
		csv      = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
		sweep    = flag.String("sweep", "", "'params' (S5.2 constants), 'hops', 'capacity' or 'l1' scaling sweeps")
		stab     = flag.Bool("stability", false, "print the S6 performance-variance comparison")
		instrs   = flag.Uint64("instructions", 0, "override measured quantum")
		warmup   = flag.Uint64("warmup", 0, "override warmup instructions (sample-error mode only)")
		sampleW  = flag.Int("sample-windows", 0, "sampled mode: measurement windows per simulation (0 = full runs)")
		sampleEW = flag.String("sample-error", "", "validate sampled vs full runs of this workload across the paper's seven architectures; prints JSON rows")
		shards   = flag.Int("shards", 0, "sharded engine: partition each simulation into this many mesh-region shards (0 = serial engine)")
		shardP   = flag.Int("shard-parallel", 0, "goroutines per sharded simulation (0 = one per shard; single runs only)")
		barrierP = flag.Int("barrier-parallel", 0, "workers per sharded window barrier: service independent conflict groups concurrently (<=1 = serial barriers; needs -shards)")
		shardEW  = flag.String("shard-error", "", "validate sharded vs serial full runs of this workload across the paper's seven architectures; prints JSON rows")
		seeds    = flag.Int("seeds", 0, "override the number of perturbation seeds")
		parallel = flag.Int("parallel", 0, "worker pool size for independent runs (0 = all cores, 1 = serial)")
		metrics  = flag.String("metrics-dir", "", "write per-run interval metrics (JSONL) into this directory")
		traceEv  = flag.Bool("trace", false, "also write per-run Chrome trace JSON (needs -metrics-dir)")
		obsIval  = flag.Uint64("obs-interval", 0, "telemetry sampling interval in cycles (0 = default)")
		cacheDir = flag.String("cache-dir", "", "memoize simulations in a content-addressed result cache at this directory")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		execTr   = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *execTr != "" {
		f, err := os.Create(*execTr)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fail(err)
		}
		defer trace.Stop()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	var seedList []uint64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, uint64(i+1))
	}
	if *traceEv && *metrics == "" {
		fail(fmt.Errorf("-trace requires -metrics-dir"))
	}
	if *sampleW > 0 && *metrics != "" {
		fail(fmt.Errorf("-sample-windows is incompatible with -metrics-dir (windows share no timeline)"))
	}
	if *sampleW > 0 && *shards > 0 {
		fail(fmt.Errorf("-sample-windows and -shards are mutually exclusive (pick one execution mode)"))
	}
	if *barrierP > 1 && *shards <= 0 && *shardEW == "" {
		fail(fmt.Errorf("-barrier-parallel needs the sharded engine (-shards or -shard-error)"))
	}
	fo := espnuca.FigureOptions{
		Quick:              *quick,
		Seeds:              seedList,
		Instructions:       *instrs,
		Parallelism:        *parallel,
		Progress:           newProgress("").report,
		MetricsDir:         *metrics,
		TraceEvents:        *traceEv,
		MetricsInterval:    *obsIval,
		SampleWindows:      *sampleW,
		EngineShards:       *shards,
		BarrierParallelism: *barrierP,
		CacheDir:           *cacheDir,
	}

	emit := func(id int) {
		fo := fo
		fo.Progress = newProgress("").report // fresh counter per figure
		tab, err := espnuca.Figure(id, fo)
		if err != nil {
			fail(err)
		}
		if *csv {
			fmt.Print(tab.CSV())
			return
		}
		fmt.Println(tab)
	}

	switch {
	case *sampleEW != "":
		sampledError(*sampleEW, *sampleW, *warmup, *instrs)
	case *shardEW != "":
		shardedError(*shardEW, *shards, *shardP, *barrierP, *warmup, *instrs)
	case *stab:
		stability(*quick, *parallel, *cacheDir)
	case *sweep == "params":
		sweepParams(*quick, *parallel, *cacheDir)
	case *sweep == "hops" || *sweep == "capacity" || *sweep == "l1":
		scalingSweep(*sweep, *quick, *parallel, *cacheDir)
	case *all:
		for id := 4; id <= 10; id++ {
			emit(id)
		}
	case *figure != 0:
		emit(*figure)
	case *table == 1:
		fmt.Println(espnuca.WorkloadTable())
	case *table == 2:
		printTable2()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// cachedRunner opens the content-addressed result cache when dir is
// non-empty and returns a memoizing run function (nil when uncached)
// plus a close func that persists the cache index.
func cachedRunner(dir string) (func(experiment.RunConfig) (experiment.RunResult, error), func()) {
	if dir == "" {
		return nil, func() {}
	}
	store, err := resultcache.Open(dir, resultcache.Options{})
	if err != nil {
		fail(err)
	}
	return store.Runner(), func() {
		if err := store.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "espsweep: cache index:", err)
		}
	}
}

// shardedError runs the sharded-mode validation harness (serial vs
// sharded full runs on every architecture of the paper's evaluated set)
// and prints the rows as a JSON array: relative errors on the headline
// metrics, the retired-exactness flag, window counts, and both wall
// clocks. scripts/bench.sh parses this output to build and check
// BENCH_7.json.
func shardedError(wl string, k, par, barrierPar int, warmup, instrs uint64) {
	if k <= 0 {
		k = 8
	}
	rc := experiment.DefaultRunConfig("esp-nuca", wl)
	if warmup != 0 {
		rc.Warmup = warmup
	}
	if instrs != 0 {
		rc.Instructions = instrs
	}
	rc.ShardParallelism = par
	rc.BarrierParallelism = barrierPar
	rows, err := experiment.ShardedError(rc, k)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fail(err)
	}
}

// sampledError runs the sampled-mode validation harness (full vs sampled
// on every architecture of the paper's evaluated set) and prints the rows
// as a JSON array: relative errors on the headline metrics, the sampled
// run's own confidence bound, and both wall clocks. scripts/bench.sh
// parses this output to build and check BENCH_6.json.
func sampledError(wl string, k int, warmup, instrs uint64) {
	if k <= 0 {
		k = 8
	}
	rc := experiment.DefaultRunConfig("esp-nuca", wl)
	if warmup != 0 {
		rc.Warmup = warmup
	}
	if instrs != 0 {
		rc.Instructions = instrs
	}
	rows, err := experiment.SampledError(rc, k)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		fail(err)
	}
}

// printTable2 prints the simulated system configuration (paper Table 2).
func printTable2() {
	cfg := arch.DefaultConfig()
	fmt.Println("== Table 2: main simulation parameters ==")
	fmt.Printf("cores            %d (out-of-order, window 64, 16 MSHRs, 4-issue)\n", cfg.Cores)
	fmt.Printf("L1 I/D           %d KB, %d-way, %dB blocks, %d cycles (%d tag)\n",
		cfg.L1.Bytes/1024, cfg.L1.Ways, cfg.L1.BlockBytes, cfg.L1.Latency, cfg.L1.TagLatency)
	fmt.Printf("L2 NUCA          %d MB, %d banks (%d per router), %d-way, %d cycles (%d tag)\n",
		cfg.L2Lines()*cfg.BlockBytes/(1024*1024), cfg.Banks, cfg.Banks/8, cfg.Ways,
		cfg.BankLatency, cfg.TagLatency)
	fmt.Printf("network          %dx%d mesh, DOR routing, %d-bit links, %d-cycle hops\n",
		cfg.NoC.Cols, cfg.NoC.Rows, cfg.NoC.LinkBytes*8, cfg.NoC.HopLatency)
	fmt.Printf("memory           %d controllers, %d-cycle latency\n",
		cfg.DRAM.Channels, cfg.DRAM.Latency)
	fmt.Printf("ESP-NUCA sampler a=%d b=%d d=%d, %d conventional + %d reference + %d explorer sets\n",
		cfg.Sampler.A, cfg.Sampler.B, cfg.Sampler.D,
		cfg.Sampler.ConventionalSets, cfg.Sampler.ReferenceSets, cfg.Sampler.ExplorerSets)
}

// sweepParams reruns a transactional and a NAS workload with varied
// protected-LRU constants (paper S5.2's sensitivity analysis). The whole
// workload x variant grid runs as one parallel batch; results print in
// grid order afterwards.
func sweepParams(quick bool, parallel int, cacheDir string) {
	run, closeCache := cachedRunner(cacheDir)
	defer closeCache()
	workloads := []string{"apache", "CG"}
	instrs := uint64(40_000)
	if quick {
		instrs = 15_000
	}
	type variant struct {
		name string
		mod  func(*core.SamplerConfig)
	}
	variants := []variant{
		{"baseline a=1 b=8 d=3", func(*core.SamplerConfig) {}},
		{"a=2 (N=7 samples)", func(s *core.SamplerConfig) { s.A = 2 }},
		{"a=3 (N=15 samples)", func(s *core.SamplerConfig) { s.A = 3 }},
		{"b=6", func(s *core.SamplerConfig) {
			s.B = 6
			if s.A > s.B {
				s.A = s.B
			}
		}},
		{"d=2 (25% slack)", func(s *core.SamplerConfig) { s.D = 2 }},
		{"d=4 (6.25% slack)", func(s *core.SamplerConfig) { s.D = 4 }},
		{"4 conventional sets", func(s *core.SamplerConfig) { s.ConventionalSets = 4 }},
		{"2 ref + 2 explorer", func(s *core.SamplerConfig) { s.ReferenceSets = 2; s.ExplorerSets = 2 }},
	}
	var rcs []experiment.RunConfig
	for _, wl := range workloads {
		for _, v := range variants {
			rc := experiment.DefaultRunConfig("esp-nuca", wl)
			rc.Instructions = instrs
			v.mod(&rc.System.Sampler)
			rcs = append(rcs, rc)
		}
	}
	results, err := experiment.RunAllFunc(parallel, run, rcs)
	if err != nil {
		fail(err)
	}
	fmt.Println("== S5.2 sensitivity: ESP-NUCA protected-LRU constants ==")
	for wi, wl := range workloads {
		base := results[wi*len(variants)].Throughput
		for vi, v := range variants {
			res := results[wi*len(variants)+vi]
			fmt.Printf("%-8s %-22s perf=%8.4f norm=%6.3f\n", wl, v.name, res.Throughput, res.Throughput/base)
		}
		fmt.Println()
	}
}

// stability reproduces the paper's S6 variance claims: the variance of
// shared-normalized performance across each workload family, per
// architecture, and ESP-NUCA's reduction versus its counterparts.
func stability(quick bool, parallel int, cacheDir string) {
	run, closeCache := cachedRunner(cacheDir)
	defer closeCache()
	o := experiment.DefaultOptions()
	if quick {
		o = experiment.QuickOptions()
	}
	o.Parallelism = parallel
	o.RunFunc = run
	o.Progress = newProgress("stability ").report
	reports, err := experiment.StabilityStudy(experiment.StabilityFamilies(), o)
	if err != nil {
		fail(err)
	}
	for _, fam := range reports {
		fmt.Printf("== %s ==\n%s\n", fam.Family, fam.Report)
	}
}

// scalingSweep runs the extension scaling studies (wire delay, L2
// capacity, L1 size) on a representative transactional workload.
func scalingSweep(kind string, quick bool, parallel int, cacheDir string) {
	run, closeCache := cachedRunner(cacheDir)
	defer closeCache()
	o := experiment.DefaultOptions()
	if quick {
		o = experiment.QuickOptions()
	}
	o.Parallelism = parallel
	o.RunFunc = run
	var tab experiment.Table
	var err error
	switch kind {
	case "hops":
		tab, err = experiment.HopLatencySweep("oltp", []sim.Cycle{2, 5, 8, 12}, o)
	case "capacity":
		tab, err = experiment.CapacitySweep("oltp", []int{16, 32, 64, 128}, o)
	case "l1":
		tab, err = experiment.L1Sweep("oltp", []int{4 << 10, 8 << 10, 16 << 10, 32 << 10}, o)
	}
	if err != nil {
		fail(err)
	}
	fmt.Println(tab)
}
